/// \file bench_e10_lan_realization.cpp
/// E10 — Section 2.2, measured on the wire. E4 prices round counts with the
/// closed forms; this bench runs the algorithms on the timed LAN realization
/// (src/lan/) and re-derives the same conclusions from *measured* simulated
/// time:
///   (a) the realized ε/D ratio for a given NIC serialization gap, and the
///       measured crossover: the extended model wins while ε/D < 1/(f+1);
///   (b) per-round slack: every two-step round fits its D+ε window with
///       room to spare (the mechanical form of "the control step needs no
///       waiting period");
///   (c) decision latency two-step-on-extended-LAN vs early-stopping-on-
///       classic-LAN for the same crash chains.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "consensus/early_stopping.hpp"
#include "consensus/two_step.hpp"
#include "lan/lan.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;
using lan::LanParams;
using lan::Time;

std::vector<std::unique_ptr<Process>> two_step_procs(int n) {
  const auto proposals = analysis::default_proposals(n);
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<consensus::TwoStepConsensus>(
        static_cast<ProcessId>(i), n, proposals[static_cast<std::size_t>(i)]));
  }
  return procs;
}

std::vector<std::unique_ptr<Process>> early_stopping_procs(int n, int t) {
  const auto proposals = analysis::default_proposals(n);
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<consensus::EarlyStoppingConsensus>(
        static_cast<ProcessId>(i), n, proposals[static_cast<std::size_t>(i)], t));
  }
  return procs;
}

std::vector<Time> chain_crashes(const LanParams& params, int n,
                                ModelKind model, int f) {
  std::vector<Time> crash(static_cast<std::size_t>(n), lan::kNeverCrashes);
  for (int r = 1; r <= f; ++r) {
    crash[static_cast<std::size_t>(r - 1)] =
        lan::crash_time_before_send(params, n, model, static_cast<Round>(r));
  }
  return crash;
}

}  // namespace

int main() {
  bool ok = true;
  const int n = 16, t = 7;

  util::print_banner(std::cout,
                     "E10a: realized eps/D on the wire, and the measured "
                     "winner per f (n=16, t=7)");
  {
    util::Table table{{"send_gap", "eps/D realized", "f", "two-step time meas",
                       "early-stop time meas", "winner meas",
                       "winner predicted (eps/D<1/(f+1))"}};
    for (const Time gap : {1, 8, 40}) {
      LanParams params;
      params.send_gap = gap;
      const double eps = static_cast<double>(params.epsilon(n));
      const double D = static_cast<double>(params.round_latency(n));
      for (const int f : {0, 1, 3, 6}) {
        // Two-step on the extended LAN.
        lan::Engine ext{params, ModelKind::Extended, two_step_procs(n),
                        chain_crashes(params, n, ModelKind::Extended, f),
                        util::Rng{17}};
        const auto a = ext.run();
        // Early-stopping on the classic LAN (no control step -> duration D).
        lan::Engine cls{params, ModelKind::Classic, early_stopping_procs(n, t),
                        chain_crashes(params, n, ModelKind::Classic, f),
                        util::Rng{17}};
        const auto b = cls.run();

        const auto ta = a.max_correct_decision_time();
        const auto tb = b.max_correct_decision_time();
        const bool ext_wins_meas = ta < tb;
        const bool ext_wins_pred =
            f + 2 <= t + 1 ? (eps / D < analysis::crossover_eps_over_d(f))
                           : false;
        if (ext_wins_meas != ext_wins_pred) ok = false;
        table.new_row()
            .cell(static_cast<std::int64_t>(gap))
            .cell(eps / D, 3)
            .cell(f)
            .cell(static_cast<std::int64_t>(ta))
            .cell(static_cast<std::int64_t>(tb))
            .cell(std::string{ext_wins_meas ? "extended" : "classic"})
            .cell(std::string{ext_wins_pred ? "extended" : "classic"});
      }
    }
    table.print(std::cout);
    std::cout << "measured winners match the Section 2.2 prediction cell by\n"
                 "cell; large NIC gaps (eps/D near or above 1/(f+1)) hand the\n"
                 "win back to the classic model, tiny ones keep the extended\n"
                 "model ahead — 'always satisfied for realistic values'.\n";
  }

  util::print_banner(std::cout,
                     "E10b: per-round window slack (two-step, n=16, no "
                     "crashes) — the pipelined commit fits with room");
  {
    LanParams params;
    lan::Engine engine{params, ModelKind::Extended, two_step_procs(n),
                       std::vector<Time>(static_cast<std::size_t>(n),
                                         lan::kNeverCrashes),
                       util::Rng{23}};
    const auto res = engine.run();
    util::Table table{{"round", "window", "last departure", "last arrival",
                       "slack"}};
    for (const auto& rt : res.rounds) {
      table.new_row()
          .cell(static_cast<std::int64_t>(rt.round))
          .cell(static_cast<std::int64_t>(res.round_duration))
          .cell(static_cast<std::int64_t>(rt.last_departure - rt.start))
          .cell(static_cast<std::int64_t>(rt.last_arrival - rt.start))
          .cell(static_cast<std::int64_t>(rt.slack()));
      if (rt.slack() < 0) ok = false;
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E10c: measured decision latency vs closed forms "
                     "(send_gap=2)");
  {
    LanParams params;
    const double D = static_cast<double>(params.round_latency(n));
    const double eps = static_cast<double>(params.epsilon(n));
    util::Table table{{"f", "two-step meas", "(f+1)(D+eps)", "early-stop meas",
                       "min(f+2,t+1)*D", "match"}};
    for (int f = 0; f <= t; ++f) {
      lan::Engine ext{params, ModelKind::Extended, two_step_procs(n),
                      chain_crashes(params, n, ModelKind::Extended, f),
                      util::Rng{29}};
      const auto a = ext.run();
      lan::Engine cls{params, ModelKind::Classic, early_stopping_procs(n, t),
                      chain_crashes(params, n, ModelKind::Classic, f),
                      util::Rng{29}};
      const auto b = cls.run();
      const double fa = analysis::extended_time(f, D, eps);
      const double fb = analysis::classic_time(f, t, D);
      const bool match =
          static_cast<double>(a.max_correct_decision_time()) == fa &&
          static_cast<double>(b.max_correct_decision_time()) == fb;
      if (!match) ok = false;
      table.new_row()
          .cell(f)
          .cell(static_cast<std::int64_t>(a.max_correct_decision_time()))
          .cell(fa, 0)
          .cell(static_cast<std::int64_t>(b.max_correct_decision_time()))
          .cell(fb, 0)
          .cell(std::string{match ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  std::cout << "\nE10 vs Section 2.2 (measured): " << (ok ? "OK" : "MISMATCH")
            << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
