/// \file bench_e4_time_cost.cpp
/// E4 — Section 2.2's round-duration cost model. A classic round costs D
/// (message latency + processing); an extended round costs D+ε because the
/// pipelined control messages add ε without any waiting period. The
/// extended model wins iff (f+1)(D+ε) < min(f+2, t+1)·D — i.e. for
/// f+2 <= t+1, iff ε/D < 1/(f+1), "always satisfied for realistic values".
///
/// Table 1: decision-time comparison over a grid of f and ε/D, with the
///          winner and the analytic crossover 1/(f+1).
/// Table 2: the same quantities derived operationally — round counts come
///          from actual simulator runs, then are priced with D and ε.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "sync/adversary.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;

}  // namespace

int main() {
  bool ok = true;
  const double D = 1.0;

  util::print_banner(std::cout,
                     "E4a: analytic decision times, t = 7 (winner flips at "
                     "eps/D = 1/(f+1))");
  {
    const int t = 7;
    util::Table table{{"f", "eps/D", "extended (f+1)(D+eps)",
                       "classic min(f+2,t+1)D", "winner", "crossover 1/(f+1)"}};
    for (const int f : {0, 1, 2, 4, 6}) {
      for (const double ratio : {0.01, 0.05, 0.2, 0.5, 1.0, 2.0}) {
        const double ext = analysis::extended_time(f, D, ratio * D);
        const double cls = analysis::classic_time(f, t, D);
        const char* winner = ext < cls ? "extended" : (ext > cls ? "classic" : "tie");
        table.new_row()
            .cell(f)
            .cell(ratio, 2)
            .cell(ext, 3)
            .cell(cls, 3)
            .cell(std::string{winner})
            .cell(analysis::crossover_eps_over_d(f), 3);
        // Verify the crossover claim for f+2 <= t+1.
        if (f + 2 <= t + 1) {
          const bool predicted_ext = ratio < analysis::crossover_eps_over_d(f);
          const bool actually_ext = ext < cls;
          if (predicted_ext != actually_ext) ok = false;
        }
      }
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E4b: simulator-derived round counts priced at eps/D = "
                     "0.1 (n = 16, t = 7)");
  {
    const int n = 16, t = 7;
    const double eps = 0.1 * D;
    util::Table table{{"f", "ext rounds (sim)", "cls rounds (sim)",
                       "ext time", "cls time", "speedup"}};
    for (int f = 0; f <= t; ++f) {
      auto f1 = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
      auto f2 = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
      const auto ext = analysis::run_two_step(n, f1);
      const auto cls = analysis::run_early_stopping(n, t, f2);
      const auto er = ext.max_correct_decision_round();
      const auto cr = cls.max_correct_decision_round();
      const double et = er * (D + eps);
      const double ct = cr * D;
      table.new_row()
          .cell(f)
          .cell(static_cast<std::int64_t>(er))
          .cell(static_cast<std::int64_t>(cr))
          .cell(et, 3)
          .cell(ct, 3)
          .cell(ct / et, 3);
      // Simulated rounds must match the closed forms the analytic table used.
      if (er != analysis::extended_rounds(f)) ok = false;
      if (cr != analysis::classic_rounds(f, t)) ok = false;
      // At eps/D = 0.1, the extended model must win for f < min(9, t) per
      // the crossover rule (1/(f+1) > 0.1 iff f < 9).
      if (f + 2 <= t + 1 && (et < ct) != (0.1 < analysis::crossover_eps_over_d(f))) {
        ok = false;
      }
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E4c: common case f=0 — the extended model needs "
                     "(D+eps) vs 2D; it wins for every eps < D");
  {
    util::Table table{{"eps/D", "extended", "classic", "winner"}};
    for (const double ratio : {0.01, 0.1, 0.5, 0.9, 0.99, 1.0, 1.5}) {
      const double ext = analysis::extended_time(0, D, ratio * D);
      const double cls = analysis::classic_time(0, /*t=*/4, D);
      table.new_row()
          .cell(ratio, 2)
          .cell(ext, 3)
          .cell(cls, 3)
          .cell(std::string{ext < cls ? "extended"
                                      : (ext > cls ? "classic" : "tie")});
      if ((ratio < 1.0) != (ext < cls)) ok = false;
    }
    table.print(std::cout);
  }

  std::cout << "\nE4 vs Section 2.2 cost model: " << (ok ? "OK" : "MISMATCH")
            << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
