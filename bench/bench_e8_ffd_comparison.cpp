/// \file bench_e8_ffd_comparison.cpp
/// E8 — the introduction's comparison with the fast-failure-detector
/// approach of Aguilera, Le Lann & Toueg (DISC'02): FFD consensus decides by
/// D + f·d, our extended model by (f+1)(D+ε), the classic model by
/// min(f+2, t+1)·D. The two enrichments are complementary; this bench
/// regenerates the three-way decision-time comparison and validates the FFD
/// timing model against its closed form (see DESIGN.md substitution #3).

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "ffd/ffd.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;

}  // namespace

int main() {
  bool ok = true;
  const double D = 1.0;

  util::print_banner(std::cout,
                     "E8a: FFD takeover simulation vs closed form D + f*d "
                     "(adversarial crash chain, d/D = 0.1)");
  {
    const ffd::TimingParams params{.round_latency = D, .detect_latency = 0.1 * D};
    util::Table table{{"f", "simulated completion", "formula D+f*d", "match"}};
    for (int f = 0; f <= 6; ++f) {
      std::vector<double> crash_times(8, ffd::kNeverCrashes);
      for (int i = 0; i < f; ++i) {
        // Each leader crashes exactly at its takeover instant — the
        // adversarial chain that realizes the bound.
        crash_times[static_cast<std::size_t>(i)] =
            static_cast<double>(i) * params.detect_latency;
      }
      const auto r = ffd::simulate_takeover(crash_times, params);
      const double formula = ffd::decision_time(f, params);
      const bool match = std::abs(r.completion_time - formula) < 1e-9;
      ok = ok && match && r.leader == f;
      table.new_row()
          .cell(f)
          .cell(r.completion_time, 3)
          .cell(formula, 3)
          .cell(std::string{match ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E8b: three-way decision times, t = 7 (d/D = 0.05, "
                     "eps/D = 0.05)");
  {
    const double d = 0.05 * D, eps = 0.05 * D;
    util::Table table{{"f", "classic min(f+2,t+1)D", "extended (f+1)(D+eps)",
                       "FFD D+f*d", "fastest"}};
    const int t = 7;
    for (int f = 0; f <= t; ++f) {
      const double cls = analysis::classic_time(f, t, D);
      const double ext = analysis::extended_time(f, D, eps);
      const double ffd_t = analysis::ffd_time(f, D, d);
      const char* fastest = "FFD";
      if (ext <= ffd_t && ext <= cls) fastest = "extended";
      else if (cls <= ffd_t && cls <= ext) fastest = "classic";
      table.new_row()
          .cell(f)
          .cell(cls, 3)
          .cell(ext, 3)
          .cell(ffd_t, 3)
          .cell(std::string{fastest});
      // Shape: at f=0 both enrichments decide in ~one round and beat the
      // classic model's 2D (the paper: "when there is no crash, both our
      // protocol and the fast failure detector-based protocol decide in a
      // single round").
      if (f == 0 && !(ext < cls && ffd_t < cls)) ok = false;
      // For f >= 1, FFD's d-granularity beats whole extra rounds.
      if (f >= 1 && !(ffd_t < ext)) ok = false;
      // Extended beats classic while f+2 <= t+1 and eps is small.
      if (f + 2 <= t + 1 && !(ext < cls)) ok = false;
    }
    table.print(std::cout);
    std::cout << "the enrichments are complementary (paper, Section 1): FFD\n"
                 "pays per-crash in d, the extended model pays per-crash in\n"
                 "whole (D+eps) rounds but needs no detector hardware.\n";
  }

  util::print_banner(std::cout,
                     "E8c: where the extended model still wins — detector "
                     "latency sweep at f = 2");
  {
    util::Table table{{"d/D", "eps/D", "FFD", "extended", "winner"}};
    const int f = 2;
    for (const double dr : {0.01, 0.1, 0.3, 0.5, 1.0}) {
      for (const double er : {0.01, 0.1}) {
        const double ffd_t = analysis::ffd_time(f, D, dr * D);
        const double ext = analysis::extended_time(f, D, er * D);
        table.new_row()
            .cell(dr, 2)
            .cell(er, 2)
            .cell(ffd_t, 3)
            .cell(ext, 3)
            .cell(std::string{ffd_t < ext ? "FFD" : "extended"});
      }
    }
    table.print(std::cout);
    std::cout << "a slow detector (d ~ D) erodes FFD's advantage; the\n"
                 "extended model's eps depends only on back-to-back sends.\n";
  }

  std::cout << "\nE8 vs related-work comparison: " << (ok ? "OK" : "MISMATCH")
            << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
