/// \file bench_e12_log_service.cpp
/// E12 — application-level experiment (extension): what the f+1 bound means
/// for a long-running replicated service, the use case the paper's
/// introduction motivates. A log of 2 000 slots is driven under a Bernoulli
/// crash process (each live replica crashes in a given slot with probability
/// p, recovering never), repeated over seeds; we report the slot-latency
/// (rounds) distribution for:
///   - plain mode: dead coordinators keep costing silent rounds forever;
///   - view-change mode: ranks are compacted after failures, so the
///     one-round fast path returns — the deployment style that actually
///     realizes the paper's "1 round in the common case".

#include <cstdlib>
#include <iostream>

#include "consensus/multi.hpp"
#include "sync/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;

/// Injects, per slot, a crash of each live process with probability p
/// (at a random crash point in round 1 of the slot's instance).
class BernoulliSlotFaults final : public FaultInjector {
 public:
  BernoulliSlotFaults(util::Rng rng, double p) : rng_(rng), p_(p) {}

  void begin_run(int n) override {
    doomed_.assign(static_cast<std::size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      doomed_[static_cast<std::size_t>(i)] = rng_.chance(p_);
    }
  }

  std::optional<SendCrash> crash_in_send(ProcessId p, Round r,
                                         std::size_t data_count,
                                         std::size_t control_count) override {
    if (!doomed_[static_cast<std::size_t>(p)] || r != 1) return std::nullopt;
    switch (rng_.below(3)) {
      case 0:
        return SendCrash{CrashPoint::BeforeSend, {}, 0};
      case 1: {
        std::vector<bool> mask(data_count);
        for (std::size_t i = 0; i < data_count; ++i) mask[i] = rng_.chance(0.5);
        return SendCrash{CrashPoint::DuringData, std::move(mask), 0};
      }
      default:
        return SendCrash{
            CrashPoint::DuringControl,
            {},
            control_count == 0 ? 0
                               : static_cast<std::size_t>(
                                     rng_.below(control_count + 1))};
    }
  }

  bool crash_before_compute(ProcessId, Round) override { return false; }

 private:
  util::Rng rng_;
  double p_;
  std::vector<bool> doomed_;
};

struct ServiceStats {
  util::Summary slot_rounds;
  util::IntHistogram round_hist{12};
  int slots_completed = 0;
  int final_live = 0;
};

ServiceStats drive(int n, int slots, double crash_prob, bool view_change,
                   std::uint64_t seed) {
  ServiceStats stats;
  consensus::ReplicatedLog log{n, {}, view_change};
  BernoulliSlotFaults faults{util::Rng{seed}, crash_prob};
  for (int slot = 0; slot < slots; ++slot) {
    if (log.live_count() <= 1) break;  // quorum-less service would stop
    std::vector<Value> cmds(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      cmds[static_cast<std::size_t>(i)] = slot * 1000 + i;
    }
    const auto r = log.append(cmds, faults);
    stats.slot_rounds.add(static_cast<double>(r.rounds));
    stats.round_hist.add(r.rounds);
    ++stats.slots_completed;
  }
  stats.final_live = log.live_count();
  return stats;
}

}  // namespace

int main() {
  bool ok = true;
  const int n = 9;
  const int slots = 2000;

  util::print_banner(std::cout,
                     "E12: replicated-log slot latency (rounds) under a "
                     "Bernoulli crash process, n=9, 2000 slots, 5 seeds");
  util::Table table{{"crash prob/slot", "mode", "slots", "mean rounds",
                     "p50", "p99", "max", "1-round slots %"}};

  for (const double p : {0.0, 0.0005, 0.002}) {
    for (const bool view_change : {false, true}) {
      util::Summary mean_acc, p99_acc;
      util::Summary all_rounds;
      std::uint64_t one_round = 0, total = 0;
      double max_seen = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto stats = drive(n, slots, p, view_change, seed);
        if (stats.slots_completed == 0) continue;
        mean_acc.add(stats.slot_rounds.mean());
        p99_acc.add(stats.slot_rounds.percentile(99));
        max_seen = std::max(max_seen, stats.slot_rounds.max());
        one_round += stats.round_hist.bucket(1);
        total += stats.round_hist.total();
        for (std::size_t b = 1; b < stats.round_hist.num_buckets(); ++b) {
          for (std::uint64_t c = 0; c < stats.round_hist.bucket(b); ++c) {
            all_rounds.add(static_cast<double>(b));
          }
        }
      }
      const double one_round_pct =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(one_round) /
                           static_cast<double>(total);
      table.new_row()
          .cell(p, 4)
          .cell(std::string{view_change ? "view-change" : "plain"})
          .cell(total)
          .cell(mean_acc.mean(), 3)
          .cell(all_rounds.empty() ? 0.0 : all_rounds.percentile(50), 1)
          .cell(p99_acc.mean(), 2)
          .cell(max_seen, 0)
          .cell(one_round_pct, 1);

      // Shape checks.
      if (p == 0.0) {
        // Crash-free: every slot is exactly one round in both modes.
        if (one_round_pct != 100.0) ok = false;
      }
      if (p > 0.0 && view_change && one_round_pct < 90.0) {
        // View change must keep the fast path dominant at low crash rates.
        ok = false;
      }
    }
  }
  table.print(std::cout);
  table.maybe_dump_csv("e12_log_service");

  std::cout << "\ncrash-free slots are exactly 1 round (the paper's common\n"
               "case); with crashes, 'plain' degrades permanently (every\n"
               "dead low rank costs a silent round in EVERY later slot)\n"
               "while 'view-change' pays f+1 once per burst and returns to\n"
               "1-round slots — the engineering payoff of the bound.\n";
  std::cout << "\nE12 log service: " << (ok ? "OK" : "MISMATCH") << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
