/// \file bench_e3_bit_complexity.cpp
/// E3 — Theorem 2: bit complexity of the two-step algorithm, b = proposal
/// size in bits.
///   best case (no crash):   2(n-1) messages, (n-1)(b+1) bits — measured
///                           and checked for exact equality;
///   worst case (bound):     (t+1)(2n-t-2) messages, (b+1)(t+1)(2n-t-2)/2
///                           bits — the paper's scenario is an upper bound
///                           (full traffic every round cannot coexist with
///                           "nobody decides"), so we check (i) the formula
///                           against the explicit sum, and (ii) that an
///                           adversarial sweep never exceeds it, reporting
///                           the worst traffic actually achieved.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "sync/adversary.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;

}  // namespace

int main() {
  bool ok = true;

  util::print_banner(std::cout, "E3a: best case — measured == (n-1)(b+1) bits");
  {
    util::Table table{{"n", "b", "msgs meas", "msgs form", "bits meas",
                       "bits form", "match"}};
    for (const int n : {4, 8, 16, 32, 64}) {
      for (const int b : {8, 32, 128}) {
        NoFaults faults;
        consensus::TwoStepConfig cfg;
        cfg.value_bits = b;
        const auto res = analysis::run_two_step(n, faults, cfg);
        const auto msgs = res.metrics.total_messages_sent();
        const auto bits = res.metrics.total_bits_sent();
        const bool match = msgs == analysis::best_case_messages(n) &&
                           bits == analysis::best_case_bits(n, b);
        ok = ok && match;
        table.new_row()
            .cell(n)
            .cell(b)
            .cell(msgs)
            .cell(analysis::best_case_messages(n))
            .cell(bits)
            .cell(analysis::best_case_bits(n, b))
            .cell(std::string{match ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  util::print_banner(
      std::cout,
      "E3b: worst-case bound — adversarial sweep stays under the formula");
  {
    util::Table table{{"n", "t", "b", "worst msgs seen", "msg bound",
                       "worst bits seen", "bit bound", "within"}};
    const int b = 32;
    for (const int n : {8, 16, 32}) {
      for (const int t : {1, 3, n / 2 - 1}) {
        std::uint64_t worst_msgs = 0, worst_bits = 0;

        // Deterministic maximal-traffic family: each coordinator completes
        // its data step, commits only to later-crashing processes, i.e.
        // prefix 0 (nobody decides early, every coordinator r sends its
        // full n-r data messages).
        {
          auto faults = make_coordinator_killer(
              t, CrashPoint::DuringControl, 0, /*control_prefix=*/0);
          consensus::TwoStepConfig cfg;
          cfg.value_bits = b;
          const auto res = analysis::run_two_step(n, faults, cfg);
          worst_msgs = std::max(worst_msgs, res.metrics.total_messages_sent());
          worst_bits = std::max(worst_bits, res.metrics.total_bits_sent());
        }
        // Randomized sweep.
        for (std::uint64_t seed = 0; seed < 400; ++seed) {
          util::Rng rng{seed};
          RandomAdversary adv{rng, t, static_cast<Round>(t + 1)};
          consensus::TwoStepConfig cfg;
          cfg.value_bits = b;
          const auto res = analysis::run_two_step(n, adv, cfg);
          worst_msgs = std::max(worst_msgs, res.metrics.total_messages_sent());
          worst_bits = std::max(worst_bits, res.metrics.total_bits_sent());
        }

        const bool within = worst_msgs <= analysis::worst_case_messages(n, t) &&
                            worst_bits <= analysis::worst_case_bits(n, t, b);
        ok = ok && within;
        table.new_row()
            .cell(n)
            .cell(t)
            .cell(b)
            .cell(worst_msgs)
            .cell(analysis::worst_case_messages(n, t))
            .cell(worst_bits)
            .cell(analysis::worst_case_bits(n, t, b))
            .cell(std::string{within ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E3c: maximal achievable data traffic (commit prefix 0 "
                     "every round) — data bits == b * Sigma(n-r)");
  {
    // With prefix-0 control crashes, every coordinator r = 1..t+1 sends all
    // its (n-r) DATA messages (the estimate is locked each round but nobody
    // can decide until round t+1): the DATA half of Theorem 2's worst case
    // IS achievable exactly.
    util::Table table{{"n", "t", "data bits meas", "b*Sigma(n-r)", "match"}};
    const int b = 32;
    for (const int n : {8, 16, 32}) {
      for (const int t : {1, 3, 5}) {
        auto faults = make_coordinator_killer(t, CrashPoint::DuringControl, 0, 0);
        consensus::TwoStepConfig cfg;
        cfg.value_bits = b;
        const auto res = analysis::run_two_step(n, faults, cfg);
        const std::uint64_t expected =
            static_cast<std::uint64_t>(b) * analysis::worst_case_per_kind(n, t);
        const bool match = res.metrics.data_bits_sent == expected;
        ok = ok && match;
        table.new_row()
            .cell(n)
            .cell(t)
            .cell(res.metrics.data_bits_sent)
            .cell(expected)
            .cell(std::string{match ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nE3 vs Theorem 2: " << (ok ? "OK" : "MISMATCH") << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
