/// \file bench_e5_lower_bound.cpp
/// E5 — Section 5 (Theorems 3–5): lower-bound evidence by exhaustive
/// adversary enumeration on small systems. A bivalency proof cannot be
/// "run", so we regenerate its observable consequences:
///
///  (1) TIGHTNESS: for every f <= t there is a schedule forcing a correct
///      process to round exactly f+1 — combined with the clean sweep under
///      the f+1 bound, the algorithm's complexity is exactly f+1, matching
///      the optimality claim of Theorem 5.
///  (2) NO FREE LUNCH: deciding one communication step earlier (on DATA
///      without COMMIT) breaks uniform agreement on concrete enumerated
///      schedules — i.e. no tweak of this algorithm family beats f+1.
///  (3) ORDER MATTERS: the ascending-commit variant (the other reading of
///      the OCR-damaged line 5) exceeds f+1, mechanically confirming the
///      DESIGN.md reconstruction.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "util/table.hpp"
#include "verify/model_checker.hpp"
#include "verify/parallel.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;
using namespace twostep::verify;

ProcessFactory factory_for(int n, consensus::TwoStepConfig cfg) {
  return [n, cfg]() {
    const auto proposals = analysis::default_proposals(n);
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < n; ++i) {
      procs.push_back(std::make_unique<consensus::TwoStepConsensus>(
          static_cast<ProcessId>(i), n, proposals[static_cast<std::size_t>(i)],
          cfg));
    }
    return procs;
  };
}

}  // namespace

int main() {
  bool ok = true;
  ModelCheckerOptions opts;
  opts.engine.model = ModelKind::Extended;

  util::print_banner(std::cout,
                     "E5.1: exhaustive check — clean under bound f+1, and the "
                     "bound is reached for every f (tightness)");
  {
    util::Table table{{"n", "t", "schedules", "violations", "f", "worst round",
                       "f+1", "tight"}};
    for (const auto& [n, t] : std::vector<std::pair<int, int>>{{3, 1}, {3, 2},
                                                               {4, 2}, {5, 2}}) {
      EnumerationConfig cfg;
      cfg.n = n;
      cfg.max_crashes = t;
      cfg.max_round = t + 1;
      const auto stats =
          model_check(cfg, opts, factory_for(n, {}),
                      analysis::default_proposals(n), [](int f) {
                        return static_cast<Round>(analysis::extended_rounds(f));
                      });
      ok = ok && stats.clean();
      for (int f = 0; f <= t; ++f) {
        const Round worst = stats.max_decision_round_by_f.count(f)
                                ? stats.max_decision_round_by_f.at(f)
                                : 0;
        const bool tight = worst == analysis::extended_rounds(f);
        ok = ok && tight;
        table.new_row()
            .cell(n)
            .cell(t)
            .cell(stats.runs)
            .cell(stats.property_violations + stats.bound_violations)
            .cell(f)
            .cell(static_cast<std::int64_t>(worst))
            .cell(static_cast<std::int64_t>(analysis::extended_rounds(f)))
            .cell(std::string{tight ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E5.1b: big configuration via the parallel checker "
                     "(n=5, t=3: ~7.9M schedules sharded across cores)");
  {
    EnumerationConfig cfg;
    cfg.n = 5;
    cfg.max_crashes = 3;
    cfg.max_round = 4;
    const auto stats = parallel_model_check(
        cfg, opts, factory_for(5, {}), analysis::default_proposals(5),
        [](int f) { return static_cast<Round>(analysis::extended_rounds(f)); });
    ok = ok && stats.clean();
    util::Table table{{"n", "t", "schedules", "violations", "f",
                       "worst round", "f+1", "tight"}};
    for (int f = 0; f <= 3; ++f) {
      const Round worst = stats.max_decision_round_by_f.count(f)
                              ? stats.max_decision_round_by_f.at(f)
                              : 0;
      const bool tight = worst == analysis::extended_rounds(f);
      ok = ok && tight;
      table.new_row()
          .cell(5)
          .cell(3)
          .cell(stats.runs)
          .cell(stats.property_violations + stats.bound_violations)
          .cell(f)
          .cell(static_cast<std::int64_t>(worst))
          .cell(static_cast<std::int64_t>(analysis::extended_rounds(f)))
          .cell(std::string{tight ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E5.2: decide-on-data-alone variant — uniform agreement "
                     "must break (the commit step is what buys f+1)");
  {
    util::Table table{{"n", "t", "schedules", "agreement violations",
                       "first counterexample"}};
    for (const auto& [n, t] : std::vector<std::pair<int, int>>{{3, 1}, {4, 2}}) {
      EnumerationConfig cfg;
      cfg.n = n;
      cfg.max_crashes = t;
      cfg.max_round = t + 1;
      consensus::TwoStepConfig premature;
      premature.premature_data_decide = true;
      const auto stats = model_check(cfg, opts, factory_for(n, premature),
                                     analysis::default_proposals(n),
                                     RoundBound{});
      ok = ok && stats.property_violations > 0;
      table.new_row()
          .cell(n)
          .cell(t)
          .cell(stats.runs)
          .cell(stats.property_violations)
          .cell(stats.examples.empty() ? std::string{"-"} : stats.examples[0]);
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E5.3: ascending-commit variant — exceeds f+1 (bound "
                     "violations) while staying safe (0 property violations)");
  {
    util::Table table{{"n", "t", "schedules", "bound violations",
                       "property violations", "first bound counterexample"}};
    for (const auto& [n, t] : std::vector<std::pair<int, int>>{{4, 2}, {5, 2}}) {
      EnumerationConfig cfg;
      cfg.n = n;
      cfg.max_crashes = t;
      cfg.max_round = t + 2;  // give the late deciders room to show up
      consensus::TwoStepConfig asc;
      asc.commit_order = consensus::CommitOrder::Ascending;
      const auto stats =
          model_check(cfg, opts, factory_for(n, asc),
                      analysis::default_proposals(n), [](int f) {
                        return static_cast<Round>(analysis::extended_rounds(f));
                      });
      ok = ok && stats.bound_violations > 0 && stats.property_violations == 0;
      table.new_row()
          .cell(n)
          .cell(t)
          .cell(stats.runs)
          .cell(stats.bound_violations)
          .cell(stats.property_violations)
          .cell(stats.examples.empty() ? std::string{"-"} : stats.examples[0]);
    }
    table.print(std::cout);
  }

  std::cout << "\nE5 vs Theorems 3-5: " << (ok ? "OK" : "MISMATCH") << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
