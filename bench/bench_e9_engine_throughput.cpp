/// \file bench_e9_engine_throughput.cpp
/// E9 — engineering microbenchmarks (google-benchmark): simulator
/// throughput for the three consensus algorithms, the model checker's
/// schedule rate, and the async kernel. Not a paper claim — this documents
/// that the exhaustive experiments in E1–E7 are cheap to rerun.

#include <benchmark/benchmark.h>

#include "analysis/experiments.hpp"
#include "async/engine.hpp"
#include "async/mr99.hpp"
#include "sync/adversary.hpp"
#include "verify/enumerator.hpp"

namespace {

using namespace twostep;

void BM_TwoStepFailureFree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sync::NoFaults faults;
    auto res = analysis::run_two_step(n, faults);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoStepFailureFree)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_TwoStepWorstCase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = n / 2;
  for (auto _ : state) {
    auto faults = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
    auto res = analysis::run_two_step(n, faults);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoStepWorstCase)->Arg(8)->Arg(32)->Arg(128);

void BM_FloodSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 2 - 1;
  for (auto _ : state) {
    sync::NoFaults faults;
    auto res = analysis::run_flood_set(n, t, faults);
    benchmark::DoNotOptimize(res);
  }
  // Flooding sends n(n-1) messages per round for t+1 rounds.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * (n - 1) * (t + 1));
}
BENCHMARK(BM_FloodSet)->Arg(8)->Arg(32)->Arg(64);

void BM_EarlyStopping(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 2 - 1;
  for (auto _ : state) {
    sync::NoFaults faults;
    auto res = analysis::run_early_stopping(n, t, faults);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EarlyStopping)->Arg(8)->Arg(32)->Arg(64);

void BM_AdapterSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sync::NoFaults faults;
    auto res = analysis::run_two_step_on_classic(n, faults);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdapterSimulation)->Arg(8)->Arg(32);

void BM_ScheduleEnumeration(benchmark::State& state) {
  verify::EnumerationConfig cfg;
  cfg.n = static_cast<int>(state.range(0));
  cfg.max_crashes = 2;
  cfg.max_round = 3;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += verify::for_each_schedule(cfg, [](const auto&) { return true; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(cfg.total_schedules())));
}
BENCHMARK(BM_ScheduleEnumeration)->Arg(3)->Arg(4)->Arg(5);

void BM_Mr99FailureFree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 2;
  for (auto _ : state) {
    std::vector<async::Value> props(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
    std::vector<async::Time> crash(static_cast<std::size_t>(n),
                                   async::kNeverCrashes);
    std::vector<std::unique_ptr<async::Node>> nodes;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<async::Mr99Node>(
          static_cast<async::ProcessId>(i), n,
          props[static_cast<std::size_t>(i)], t));
    }
    async::AsyncOptions opt;
    opt.delay = {1, 10};
    async::Engine engine{opt, std::move(nodes),
                         async::SuspicionOracle::eventually_perfect(crash, 5),
                         crash, util::Rng{7}};
    auto res = engine.run();
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Mr99FailureFree)->Arg(5)->Arg(9)->Arg(17);

}  // namespace

BENCHMARK_MAIN();
