/// \file bench_e1_round_complexity.cpp
/// E1 — Theorem 1 / Lemma 3 (and the classic-model comparison the paper's
/// introduction states). Regenerates the round-complexity table:
///
///   two-step (extended model):      f+1 rounds, worst case over adversaries
///   early-stopping (classic model): min(f+2, t+1)
///   flooding (classic model):       t+1
///
/// For each (n, t, f) we run the worst-case coordinator-killer family plus a
/// randomized adversary sweep and report the worst observed decision round
/// of correct processes next to the paper's formula. Every run is also
/// checked for the uniform-consensus properties.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "sync/adversary.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "verify/properties.hpp"

namespace {

using namespace twostep;

struct WorstRounds {
  sync::Round two_step = 0;
  sync::Round early_stopping = 0;
  sync::Round flood_set = 0;
  bool all_properties_ok = true;
};

/// Worst decision round of correct processes over the adversary family:
/// the silent coordinator-killer (provably worst for the two-step algorithm)
/// plus `seeds` random adversaries pinned to exactly-f crash attempts.
WorstRounds measure(int n, int t, int f, int seeds) {
  WorstRounds out;
  const auto proposals = analysis::default_proposals(n);

  auto absorb = [&](const sync::RunResult& res, sync::Round* slot,
                    sync::Round bound) {
    if (res.num_crashed() != f) return;  // keep the f-slice exact
    *slot = std::max(*slot, res.max_correct_decision_round());
    const auto report = verify::check_consensus(proposals, res, bound);
    if (!report.all_ok()) {
      out.all_properties_ok = false;
      std::cerr << "PROPERTY VIOLATION: " << report.violation << '\n';
    }
  };

  // Deterministic worst case: first f coordinators silent in their round.
  {
    auto faults = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
    absorb(analysis::run_two_step(n, faults, {}, proposals), &out.two_step,
           static_cast<sync::Round>(analysis::extended_rounds(f)));
  }
  {
    auto faults = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
    absorb(analysis::run_early_stopping(n, t, faults, proposals),
           &out.early_stopping,
           static_cast<sync::Round>(analysis::classic_rounds(f, t)));
  }
  {
    auto faults = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
    absorb(analysis::run_flood_set(n, t, faults, proposals), &out.flood_set,
           static_cast<sync::Round>(analysis::floodset_rounds(t)));
  }

  // Randomized sweep (crash budget f, horizon t+1 rounds).
  for (int s = 0; s < seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s) * 7919u + 17u;
    {
      sync::RandomAdversary adv{util::Rng{seed}, f,
                                static_cast<sync::Round>(t + 1)};
      absorb(analysis::run_two_step(n, adv, {}, proposals), &out.two_step,
             static_cast<sync::Round>(analysis::extended_rounds(f)));
    }
    {
      sync::RandomAdversary adv{util::Rng{seed}, f,
                                static_cast<sync::Round>(t + 1)};
      absorb(analysis::run_early_stopping(n, t, adv, proposals),
             &out.early_stopping,
             static_cast<sync::Round>(analysis::classic_rounds(f, t)));
    }
    {
      sync::RandomAdversary adv{util::Rng{seed}, f,
                                static_cast<sync::Round>(t + 1)};
      absorb(analysis::run_flood_set(n, t, adv, proposals), &out.flood_set,
             static_cast<sync::Round>(analysis::floodset_rounds(t)));
    }
  }
  return out;
}

}  // namespace

int main() {
  util::print_banner(std::cout, "E1: round complexity vs actual crashes f");
  std::cout << "paper: two-step decides in f+1 (Theorem 1); classic early-\n"
               "stopping needs min(f+2, t+1); flooding always takes t+1.\n"
               "'meas' = worst decision round of a correct process over the\n"
               "adversary family; 'form' = the paper's formula.\n";

  bool all_ok = true;
  bool shapes_ok = true;

  for (const int n : {5, 8, 16, 32}) {
    const int t = n / 2 - 1 > 0 ? n / 2 - 1 : 1;
    util::Table table{{"n", "t", "f", "two-step meas", "two-step form (f+1)",
                       "early-stop meas", "early-stop form (min(f+2,t+1))",
                       "flood meas", "flood form (t+1)"}};
    for (int f = 0; f <= t; ++f) {
      const WorstRounds w = measure(n, t, f, /*seeds=*/25);
      all_ok = all_ok && w.all_properties_ok;
      table.new_row()
          .cell(n)
          .cell(t)
          .cell(f)
          .cell(static_cast<std::int64_t>(w.two_step))
          .cell(static_cast<std::int64_t>(analysis::extended_rounds(f)))
          .cell(static_cast<std::int64_t>(w.early_stopping))
          .cell(static_cast<std::int64_t>(analysis::classic_rounds(f, t)))
          .cell(static_cast<std::int64_t>(w.flood_set))
          .cell(static_cast<std::int64_t>(analysis::floodset_rounds(t)));
      // Shape checks: the measured two-step worst case matches f+1 exactly
      // (tight both ways), and it never loses to the classic baselines.
      if (w.two_step != analysis::extended_rounds(f)) shapes_ok = false;
      if (w.early_stopping > analysis::classic_rounds(f, t)) shapes_ok = false;
      if (w.flood_set != analysis::floodset_rounds(t)) shapes_ok = false;
      if (w.two_step > w.flood_set && f < t) shapes_ok = false;
    }
    table.print(std::cout);
    table.maybe_dump_csv("e1_rounds_n" + std::to_string(n));
    std::cout << '\n';
  }

  std::cout << "properties on every run: " << (all_ok ? "OK" : "VIOLATED")
            << "\nshape vs paper formulas: " << (shapes_ok ? "OK" : "MISMATCH")
            << '\n';
  return all_ok && shapes_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
