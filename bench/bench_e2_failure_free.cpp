/// \file bench_e2_failure_free.cpp
/// E2 — Section 3.2's headline claim: "if the first coordinator does not
/// crash, the decision is obtained in one round, whatever the number of
/// faulty processes". Two tables:
///   (a) failure-free runs across n: two-step = 1 round vs classic
///       baselines (2 and t+1 rounds);
///   (b) runs with f > 0 crashes that spare the first coordinator:
///       still 1 round for every correct process.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "sync/fault.hpp"
#include "util/table.hpp"
#include "verify/properties.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;

}  // namespace

int main() {
  bool ok = true;

  util::print_banner(std::cout,
                     "E2a: failure-free decision rounds (paper: 1 vs 2 vs t+1)");
  {
    util::Table table{{"n", "t", "two-step", "early-stop", "flood"}};
    for (const int n : {3, 5, 9, 17, 33, 65}) {
      const int t = (n - 1) / 2;
      NoFaults f1, f2, f3;
      const auto proposals = analysis::default_proposals(n);
      const auto ext = analysis::run_two_step(n, f1, {}, proposals);
      const auto es = analysis::run_early_stopping(n, t, f2, proposals);
      const auto fl = analysis::run_flood_set(n, t, f3, proposals);
      table.new_row()
          .cell(n)
          .cell(t)
          .cell(static_cast<std::int64_t>(ext.max_correct_decision_round()))
          .cell(static_cast<std::int64_t>(es.max_correct_decision_round()))
          .cell(static_cast<std::int64_t>(fl.max_correct_decision_round()));
      ok = ok && ext.max_correct_decision_round() == 1 &&
           es.max_correct_decision_round() == 2 &&
           fl.max_correct_decision_round() == t + 1;
      ok = ok && verify::check_consensus(proposals, ext, 1).all_ok() &&
           verify::check_consensus(proposals, es, 2).all_ok() &&
           verify::check_consensus(proposals, fl,
                                   static_cast<Round>(t + 1))
               .all_ok();
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E2b: crashes that spare the first coordinator — still "
                     "one round, 'whatever the number of faulty processes'");
  {
    util::Table table{{"n", "f (non-coordinator crashes)",
                       "correct decision round", "all correct decided"}};
    const int n = 9;
    for (int f = 0; f <= 4; ++f) {
      // Crash the LAST f processes during round 1's compute: they receive
      // p0's data+commit but never decide; every survivor decides round 1.
      ScheduledFaults faults;
      for (int i = 0; i < f; ++i) {
        faults.set(static_cast<ProcessId>(n - 1 - i),
                   CrashSpec{.round = 1, .point = CrashPoint::BeforeCompute});
      }
      const auto proposals = analysis::default_proposals(n);
      const auto res = analysis::run_two_step(n, faults, {}, proposals);
      table.new_row()
          .cell(n)
          .cell(res.num_crashed())
          .cell(static_cast<std::int64_t>(res.max_correct_decision_round()))
          .cell(std::string{res.all_correct_decided() ? "yes" : "NO"});
      ok = ok && res.num_crashed() == f &&
           res.max_correct_decision_round() == 1 && res.all_correct_decided();
    }
    table.print(std::cout);
  }

  std::cout << "\nE2 shape vs paper: " << (ok ? "OK" : "MISMATCH") << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
