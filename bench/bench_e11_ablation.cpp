/// \file bench_e11_ablation.cpp
/// E11 — design-choice ablation (extension; DESIGN.md §extensions). The
/// extended model adds TWO things over classic flooding: (i) the pipelined
/// 1-bit completion certificate, and (ii) the rotating coordinator with the
/// *ordered* commit prefix. This bench isolates their contributions by
/// comparing three algorithms in the same (extended-capable) system:
///
///   flooding (classic)         — neither ingredient:  2 rounds best, t+1 worst
///   early-stopping (classic)   — neither:             2 best, min(f+2,t+1)
///   flood-commit (ablation)    — certificate only:    1 best, > f+1 worst
///   two-step (the paper)       — both:                1 best, f+1 worst
///
/// Table 1 sweeps hand-picked adversaries per f; table 2 uses the model
/// checker to report the exact worst case per f over ALL schedules (n=4).

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "consensus/flood_commit.hpp"
#include "sync/adversary.hpp"
#include "util/table.hpp"
#include "verify/model_checker.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;

RunResult run_flood_commit(int n, int t, FaultInjector& faults) {
  const auto proposals = analysis::default_proposals(n);
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<consensus::FloodCommitConsensus>(
        static_cast<ProcessId>(i), n, proposals[static_cast<std::size_t>(i)], t));
  }
  Options opt;
  opt.model = ModelKind::Extended;
  Engine engine{opt, std::move(procs), faults};
  return engine.run();
}

verify::ProcessFactory checker_factory(int n, int t, bool flood_commit) {
  return [n, t, flood_commit]() {
    const auto proposals = analysis::default_proposals(n);
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < n; ++i) {
      if (flood_commit) {
        procs.push_back(std::make_unique<consensus::FloodCommitConsensus>(
            static_cast<ProcessId>(i), n,
            proposals[static_cast<std::size_t>(i)], t));
      } else {
        procs.push_back(std::make_unique<consensus::TwoStepConsensus>(
            static_cast<ProcessId>(i), n,
            proposals[static_cast<std::size_t>(i)]));
      }
    }
    return procs;
  };
}

}  // namespace

int main() {
  bool ok = true;
  const int n = 8, t = 3;

  util::print_banner(std::cout,
                     "E11a: adversary families per f (n=8, t=3) — worst "
                     "correct decision round");
  {
    util::Table table{{"f", "adversary", "two-step (both)",
                       "flood-commit (certificate only)",
                       "early-stop (neither)", "flood (neither)"}};
    struct Family {
      const char* name;
      CrashPoint point;
      std::size_t prefix;
    };
    const Family families[] = {
        {"silent coordinators", CrashPoint::BeforeSend, 0},
        {"data-complete, no certificates", CrashPoint::DuringControl, 0},
    };
    for (const auto& fam : families) {
      for (int f = 0; f <= t; ++f) {
        auto f1 = make_coordinator_killer(f, fam.point, 0, fam.prefix);
        auto f2 = make_coordinator_killer(f, fam.point, 0, fam.prefix);
        auto f3 = make_coordinator_killer(f, fam.point, 0, fam.prefix);
        auto f4 = make_coordinator_killer(f, fam.point, 0, fam.prefix);
        const auto ts = analysis::run_two_step(n, f1);
        const auto fc = run_flood_commit(n, t, f2);
        const auto es = analysis::run_early_stopping(n, t, f3);
        const auto fl = analysis::run_flood_set(n, t, f4);
        table.new_row()
            .cell(f)
            .cell(std::string{fam.name})
            .cell(static_cast<std::int64_t>(ts.max_correct_decision_round()))
            .cell(static_cast<std::int64_t>(fc.max_correct_decision_round()))
            .cell(static_cast<std::int64_t>(es.max_correct_decision_round()))
            .cell(static_cast<std::int64_t>(fl.max_correct_decision_round()));
        // The paper's algorithm respects f+1 on every family; the ablation
        // must match it failure-free but lose on the uncertified family.
        if (ts.max_correct_decision_round() > analysis::extended_rounds(f)) {
          ok = false;
        }
        if (f == 0 && fc.max_correct_decision_round() != 1) ok = false;
      }
    }
    table.print(std::cout);
    std::cout << "failure-free, BOTH extended-model algorithms decide in 1\n"
                 "round (the certificate alone beats classic's 2); under\n"
                 "uncertified crashes only the coordinator+prefix structure\n"
                 "holds the f+1 line.\n";
  }

  util::print_banner(std::cout,
                     "E11b: exact worst case per f over ALL schedules (model "
                     "checker, n=4, t=2)");
  {
    verify::EnumerationConfig cfg;
    cfg.n = 4;
    cfg.max_crashes = 2;
    cfg.max_round = 4;
    verify::ModelCheckerOptions mopts;
    mopts.engine.model = ModelKind::Extended;

    const auto ts_stats =
        verify::model_check(cfg, mopts, checker_factory(4, 2, false),
                            analysis::default_proposals(4), verify::RoundBound{});
    const auto fc_stats =
        verify::model_check(cfg, mopts, checker_factory(4, 2, true),
                            analysis::default_proposals(4), verify::RoundBound{});

    util::Table table{{"f", "two-step worst (== f+1)", "flood-commit worst",
                       "gap"}};
    for (int f = 0; f <= 2; ++f) {
      const auto a = ts_stats.max_decision_round_by_f.at(f);
      const auto b = fc_stats.max_decision_round_by_f.at(f);
      table.new_row()
          .cell(f)
          .cell(static_cast<std::int64_t>(a))
          .cell(static_cast<std::int64_t>(b))
          .cell(static_cast<std::int64_t>(b - a));
      if (a != analysis::extended_rounds(f)) ok = false;
      // The ablation must strictly lose for intermediate f; at f = t both
      // run into the t+1 flooding cap, so the gap legitimately closes.
      if (f > 0 && f < 2 && b <= a) ok = false;
    }
    table.print(std::cout);
    if (ts_stats.property_violations + fc_stats.property_violations > 0) {
      ok = false;
    }
    std::cout << "both algorithms are safe on all " << ts_stats.runs
              << " schedules; only the paper's achieves f+1 — the ordered\n"
                 "commit prefix + rotating coordinator is the load-bearing\n"
                 "combination (the 'limit' half of the paper's title).\n";
  }

  std::cout << "\nE11 ablation: " << (ok ? "OK" : "MISMATCH") << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
