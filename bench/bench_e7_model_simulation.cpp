/// \file bench_e7_model_simulation.cpp
/// E7 — Section 2.2's computability-equivalence claim: "sending each control
/// message in separate consecutive rounds provides a (non-efficient)
/// simulation in the other direction". We run the two-step algorithm
/// through the ExtendedOnClassicAdapter and regenerate:
///   (a) correctness is preserved under crash schedules;
///   (b) the cost: (f+1) virtual rounds become (f+1)*n classic rounds —
///       the inefficiency that motivates the extended model in the first
///       place;
///   (c) the reverse direction is free: a classic algorithm runs unchanged
///       on the extended model with zero control traffic.

#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hpp"
#include "analysis/experiments.hpp"
#include "consensus/adapter.hpp"
#include "sync/adversary.hpp"
#include "util/table.hpp"
#include "verify/properties.hpp"

namespace {

using namespace twostep;
using namespace twostep::sync;

}  // namespace

int main() {
  bool ok = true;

  util::print_banner(std::cout,
                     "E7a: extended-on-classic — correctness preserved, cost "
                     "(f+1)*n classic rounds");
  {
    util::Table table{{"n", "f", "virtual rounds (f+1)", "classic rounds meas",
                       "(f+1)*n form", "properties"}};
    for (const int n : {4, 6, 8}) {
      for (int f = 0; f <= std::min(3, n - 2); ++f) {
        ScheduledFaults faults;
        for (int r = 1; r <= f; ++r) {
          faults.set(static_cast<ProcessId>(r - 1),
                     CrashSpec{.round = static_cast<Round>((r - 1) * n + 1),
                               .point = CrashPoint::BeforeSend});
        }
        const auto proposals = analysis::default_proposals(n);
        const auto sim =
            analysis::run_two_step_on_classic(n, faults, {}, proposals);
        const auto report = verify::check_consensus(
            proposals, sim,
            static_cast<Round>(analysis::simulated_classic_rounds(f, n)));
        const bool row_ok =
            report.all_ok() &&
            sim.max_correct_decision_round() ==
                analysis::simulated_classic_rounds(f, n);
        ok = ok && row_ok;
        table.new_row()
            .cell(n)
            .cell(f)
            .cell(analysis::extended_rounds(f))
            .cell(static_cast<std::int64_t>(sim.max_correct_decision_round()))
            .cell(analysis::simulated_classic_rounds(f, n))
            .cell(std::string{row_ok ? "OK" : "VIOLATED"});
      }
    }
    table.print(std::cout);
  }

  util::print_banner(std::cout,
                     "E7b: simulation overhead factor (classic/virtual) == n");
  {
    util::Table table{{"n", "native extended rounds", "simulated classic rounds",
                       "overhead factor"}};
    for (const int n : {4, 8, 12, 16}) {
      NoFaults f1, f2;
      const auto ext = analysis::run_two_step(n, f1);
      const auto sim = analysis::run_two_step_on_classic(n, f2);
      const double factor =
          static_cast<double>(sim.max_correct_decision_round()) /
          static_cast<double>(ext.max_correct_decision_round());
      table.new_row()
          .cell(n)
          .cell(static_cast<std::int64_t>(ext.max_correct_decision_round()))
          .cell(static_cast<std::int64_t>(sim.max_correct_decision_round()))
          .cell(factor, 1);
      ok = ok && factor == static_cast<double>(n);
    }
    table.print(std::cout);
    std::cout << "one classic round per control message: the prescribed order\n"
                 "is preserved, but the 1-round decision becomes n rounds —\n"
                 "hence \"non-efficient\" (Section 2.2).\n";
  }

  util::print_banner(std::cout,
                     "E7c: classic-on-extended — flooding runs unchanged, "
                     "zero control messages");
  {
    util::Table table{{"n", "t", "rounds", "control msgs", "properties"}};
    for (const int n : {4, 8}) {
      const int t = 2;
      const auto proposals = analysis::default_proposals(n);
      std::vector<std::unique_ptr<Process>> procs;
      for (int i = 0; i < n; ++i) {
        procs.push_back(std::make_unique<consensus::FloodSetConsensus>(
            static_cast<ProcessId>(i), n, proposals[static_cast<std::size_t>(i)],
            t));
      }
      NoFaults faults;
      Options opt;
      opt.model = ModelKind::Extended;
      Engine engine{opt, std::move(procs), faults};
      const auto res = engine.run();
      const auto report = verify::check_consensus(
          proposals, res, static_cast<Round>(t + 1));
      ok = ok && report.all_ok() && res.metrics.control_messages_sent == 0;
      table.new_row()
          .cell(n)
          .cell(t)
          .cell(static_cast<std::int64_t>(res.rounds_executed))
          .cell(res.metrics.control_messages_sent)
          .cell(std::string{report.all_ok() ? "OK" : "VIOLATED"});
    }
    table.print(std::cout);
  }

  std::cout << "\nE7 vs Section 2.2 equivalence: " << (ok ? "OK" : "MISMATCH")
            << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
