/// \file bench_e6_mr99_bridge.cpp
/// E6 — Section 4: the bridge between the extended synchronous model and
/// asynchronous ◇S consensus. The paper's point: MR99's round = coordinator
/// broadcast + all-to-all "is it locked?" exchange; the extended model's
/// round = coordinator broadcast + pipelined COMMIT. Same principle, two
/// settings. We regenerate the correspondence:
///
///   (a) coordinator-crash chains: both algorithms use exactly f+1
///       coordinator turns (rounds) to decide, and both decide the first
///       surviving coordinator's estimate;
///   (b) traffic: MR99 pays Theta(n^2) messages per round for the second
///       step; the two-step algorithm pays 2(n-1) per round in total —
///       the synchrony assumption is what removes the quadratic exchange.

#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/experiments.hpp"
#include "async/engine.hpp"
#include "async/mr99.hpp"
#include "sync/adversary.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;

struct Mr99Outcome {
  std::int64_t rounds = 0;
  async::Value decided = -1;
  std::uint64_t packets = 0;
  bool all_decided = false;
};

Mr99Outcome run_mr99(int n, int t, int crash_first_k, std::uint64_t seed) {
  std::vector<async::Value> props(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
  std::vector<async::Time> crash_times(static_cast<std::size_t>(n),
                                       async::kNeverCrashes);
  for (int i = 0; i < crash_first_k; ++i) crash_times[static_cast<std::size_t>(i)] = 0;

  std::vector<std::unique_ptr<async::Node>> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<async::Mr99Node>(
        static_cast<async::ProcessId>(i), n, props[static_cast<std::size_t>(i)],
        t));
  }
  async::AsyncOptions opt;
  opt.delay = {1, 10};
  async::Engine engine{opt, std::move(nodes),
                       async::SuspicionOracle::eventually_perfect(crash_times,
                                                                  /*detect=*/15),
                       crash_times, util::Rng{seed}};
  std::vector<const async::Mr99Node*> raw;
  for (int i = 0; i < n; ++i) {
    raw.push_back(static_cast<const async::Mr99Node*>(&engine.node(i)));
  }
  const auto res = engine.run();

  Mr99Outcome out;
  out.packets = res.packets_delivered;
  out.all_decided = res.all_correct_decided();
  for (int i = crash_first_k; i < n; ++i) {
    out.rounds = std::max(out.rounds,
                          raw[static_cast<std::size_t>(i)]->rounds_used());
    if (res.decision[static_cast<std::size_t>(i)].has_value()) {
      out.decided = *res.decision[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

}  // namespace

int main() {
  bool ok = true;
  const int n = 7, t = 3;

  util::print_banner(std::cout,
                     "E6a: coordinator-crash chains — rounds used and decided "
                     "value coincide across the bridge (n=7, t=3)");
  {
    util::Table table{{"f (first-f coordinators crash)", "two-step rounds",
                       "MR99 rounds", "two-step decision", "MR99 decision"}};
    for (int f = 0; f <= t; ++f) {
      auto faults = sync::make_coordinator_killer(f, sync::CrashPoint::BeforeSend);
      const auto proposals = analysis::default_proposals(n);
      const auto ext = analysis::run_two_step(n, faults, {}, proposals);
      const auto mr = run_mr99(n, t, f, /*seed=*/42 + static_cast<std::uint64_t>(f));

      const auto ext_round = ext.max_correct_decision_round();
      const auto ext_val = ext.decision[static_cast<std::size_t>(f)].value_or(-1);
      table.new_row()
          .cell(f)
          .cell(static_cast<std::int64_t>(ext_round))
          .cell(mr.rounds)
          .cell(static_cast<std::int64_t>(ext_val))
          .cell(static_cast<std::int64_t>(mr.decided));
      ok = ok && ext_round == f + 1 && mr.rounds == f + 1 &&
           ext_val == 100 + f && mr.decided == 100 + f && mr.all_decided;
    }
    table.print(std::cout);
    std::cout << "both columns follow f+1 coordinator turns and decide the\n"
                 "first surviving coordinator's estimate — the same machinery\n"
                 "in two settings (Section 4).\n";
  }

  util::print_banner(std::cout,
                     "E6b: what the synchrony buys — failure-free messages "
                     "per decision");
  {
    util::Table table{{"n", "two-step msgs (2(n-1))", "MR99 packets",
                       "ratio"}};
    for (const int nn : {5, 9, 13, 21}) {
      const int tt = (nn - 1) / 2 - ((nn - 1) % 2 == 0 ? 0 : 0);
      const int safe_t = std::min(tt, (nn - 1) / 2);
      sync::NoFaults faults;
      const auto ext = analysis::run_two_step(nn, faults);
      const auto mr = run_mr99(nn, std::max(1, safe_t - 1), 0, /*seed=*/7);
      const double ratio =
          static_cast<double>(mr.packets) /
          static_cast<double>(ext.metrics.total_messages_sent());
      table.new_row()
          .cell(nn)
          .cell(ext.metrics.total_messages_sent())
          .cell(mr.packets)
          .cell(ratio, 2);
      ok = ok && mr.packets > ext.metrics.total_messages_sent();
    }
    table.print(std::cout);
    std::cout << "MR99 needs the quadratic second step (plus decide relays);\n"
                 "the COMMIT pipelining replaces it at linear cost.\n";
  }

  util::print_banner(std::cout,
                     "E6c: MR99 under pre-GST suspicion noise — safety is "
                     "indulgent, extra rounds only");
  {
    util::Table table{{"seed", "rounds used", "all correct decided"}};
    int worst_rounds = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      std::vector<async::Value> props(7);
      for (int i = 0; i < 7; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
      std::vector<async::Time> crash_times(7, async::kNeverCrashes);
      std::vector<std::unique_ptr<async::Node>> nodes;
      for (int i = 0; i < 7; ++i) {
        nodes.push_back(std::make_unique<async::Mr99Node>(i, 7, props[static_cast<std::size_t>(i)], 3));
      }
      async::AsyncOptions opt;
      opt.delay = {1, 10};
      auto oracle = async::SuspicionOracle::noisy(
          util::Rng{seed ^ 0xffULL}, 7, crash_times, /*detect=*/10,
          /*gst=*/150, /*noise_prob=*/0.5);
      async::Engine engine{opt, std::move(nodes), std::move(oracle),
                           crash_times, util::Rng{seed}};
      std::vector<const async::Mr99Node*> raw;
      for (int i = 0; i < 7; ++i) {
        raw.push_back(static_cast<const async::Mr99Node*>(&engine.node(i)));
      }
      const auto res = engine.run();
      int rounds = 0;
      for (const auto* node : raw) {
        rounds = std::max(rounds, static_cast<int>(node->rounds_used()));
      }
      worst_rounds = std::max(worst_rounds, rounds);
      ok = ok && res.all_correct_decided();
      table.new_row()
          .cell(static_cast<std::uint64_t>(seed))
          .cell(rounds)
          .cell(std::string{res.all_correct_decided() ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "worst rounds under noise: " << worst_rounds
              << " (cf. crash-free two-step: always 1 — the synchronous\n"
                 " model never pays for wrong suspicions).\n";
  }

  util::print_banner(std::cout,
                     "E6d: decision time vs detection latency (coordinator "
                     "crashed at t=0) — the async face of the FFD discussion");
  {
    // In the async world the analogue of the fast detector's d is the
    // suspicion delay: with the round-1 coordinator dead, nobody can move
    // to round 2 before suspecting it. Decision time should scale with the
    // detection delay — the same per-crash cost structure as FFD's D + f*d.
    util::Table table{{"detect delay", "max decision time",
                       "all correct decided"}};
    async::Time prev_time = 0;
    bool monotone = true;
    for (const async::Time detect : {5, 20, 80, 320}) {
      std::vector<async::Value> props(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
      std::vector<async::Time> crash_times(static_cast<std::size_t>(n),
                                           async::kNeverCrashes);
      crash_times[0] = 0;
      std::vector<std::unique_ptr<async::Node>> nodes;
      for (int i = 0; i < n; ++i) {
        nodes.push_back(std::make_unique<async::Mr99Node>(
            static_cast<async::ProcessId>(i), n,
            props[static_cast<std::size_t>(i)], t));
      }
      async::AsyncOptions opt;
      opt.delay = {1, 10};
      async::Engine engine{opt, std::move(nodes),
                           async::SuspicionOracle::eventually_perfect(
                               crash_times, detect),
                           crash_times, util::Rng{99}};
      const auto res = engine.run();
      async::Time max_time = 0;
      for (int i = 1; i < n; ++i) {
        max_time = std::max(max_time, res.decision_time[static_cast<std::size_t>(i)]);
      }
      if (max_time < prev_time) monotone = false;
      prev_time = max_time;
      ok = ok && res.all_correct_decided();
      table.new_row()
          .cell(static_cast<std::int64_t>(detect))
          .cell(static_cast<std::int64_t>(max_time))
          .cell(std::string{res.all_correct_decided() ? "yes" : "NO"});
    }
    ok = ok && monotone;
    table.print(std::cout);
    std::cout << "slower suspicion -> later decision, mirroring FFD's d-term\n"
                 "(E8); the extended synchronous model needs NO detector: the\n"
                 "absent coordinator is discovered by its silent round at\n"
                 "fixed cost D+eps.\n";
  }

  std::cout << "\nE6 vs Section 4 bridge: " << (ok ? "OK" : "MISMATCH") << '\n';
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
